package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wanshuffle/internal/core"
	"wanshuffle/internal/obs"
	"wanshuffle/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// smallOpts keeps report-test runs fast: one seeded run at 5% of Table I
// modeled sizes, validated against the reference.
func smallOpts() Options {
	return Options{Runs: 1, BaseSeed: 1, Scale: 0.05, Validate: true, Trace: true}
}

// TestRunReportGolden pins the exact run-report JSON of a seeded
// WordCount/AggShuffle run. The simulator is deterministic per seed and
// encoding/json orders struct fields and map keys stably, so any byte
// change here is a behavioural or schema change — regenerate deliberately
// with `go test ./internal/bench -run Golden -update`.
func TestRunReportGolden(t *testing.T) {
	rep, err := RunOne(workloads.WordCount(), core.SchemeAggShuffle, 1, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.RunReport("wordcount").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "wordcount-agg-report.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("run report drifted from golden (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestReportsRoundTripAllWorkloads emits a run report for every HiBench
// workload × scheme and checks each decodes under the schema and re-encodes
// byte-identically — the -report flag's contract.
func TestReportsRoundTripAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every workload × scheme")
	}
	reports, err := Reports(workloads.All(), Schemes(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(workloads.All()) * len(Schemes()); len(reports) != want {
		t.Fatalf("got %d reports, want %d", len(reports), want)
	}
	for _, rep := range reports {
		var first bytes.Buffer
		if err := rep.WriteJSON(&first); err != nil {
			t.Fatalf("%s/%s: %v", rep.Workload, rep.Scheme, err)
		}
		dec, err := obs.DecodeReport(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("%s/%s: %v", rep.Workload, rep.Scheme, err)
		}
		var second bytes.Buffer
		if err := dec.WriteJSON(&second); err != nil {
			t.Fatalf("%s/%s: %v", rep.Workload, rep.Scheme, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("%s/%s: decode → re-encode is not byte-stable", rep.Workload, rep.Scheme)
		}
		if rep.Backend != "sim" || rep.CompletionSec <= 0 || len(rep.Stages) == 0 {
			t.Fatalf("%s/%s: degenerate report: backend=%q completion=%v stages=%d",
				rep.Workload, rep.Scheme, rep.Backend, rep.CompletionSec, len(rep.Stages))
		}
		if len(rep.Tasks) == 0 {
			t.Fatalf("%s/%s: traced run produced no task summaries", rep.Workload, rep.Scheme)
		}
		if len(rep.TrafficMatrix) != len(rep.MatrixLabels) {
			t.Fatalf("%s/%s: matrix %d rows vs %d labels",
				rep.Workload, rep.Scheme, len(rep.TrafficMatrix), len(rep.MatrixLabels))
		}
	}
}
