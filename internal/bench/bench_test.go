package bench

import (
	"strings"
	"testing"

	"wanshuffle/internal/core"
	"wanshuffle/internal/topology"
	"wanshuffle/internal/workloads"
)

// testOpts keeps the integration sweeps fast: 3 runs at reduced modeled
// scale, with output validation on.
func testOpts() Options {
	return Options{Runs: 3, Scale: 0.25, Validate: true, Parallelism: 8}
}

// TestFig7Shapes verifies the paper's headline JCT orderings on a reduced
// sweep: AggShuffle beats the Spark baseline on every workload, beats
// Centralized on every workload except (at most marginally) TeraSort, and
// shows the smallest run-to-run spread.
func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	series, err := Fig7(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workloads.All() {
		spark, _ := Find(series, w.Name, core.SchemeSpark)
		cent, _ := Find(series, w.Name, core.SchemeCentralized)
		agg, _ := Find(series, w.Name, core.SchemeAggShuffle)
		if agg.JCT.TrimmedMean >= spark.JCT.TrimmedMean {
			t.Errorf("%s: AggShuffle %.1fs not below Spark %.1fs", w.Name, agg.JCT.TrimmedMean, spark.JCT.TrimmedMean)
		}
		// Paper Fig. 7: Centralized beats AggShuffle nowhere; on TeraSort
		// it comes within ~4%, so allow a small margin there.
		limit := cent.JCT.TrimmedMean * 1.02
		if w.Name == "TeraSort" {
			limit = cent.JCT.TrimmedMean * 1.10
		}
		if agg.JCT.TrimmedMean > limit {
			t.Errorf("%s: AggShuffle %.1fs above Centralized %.1fs", w.Name, agg.JCT.TrimmedMean, cent.JCT.TrimmedMean)
		}
		red, err := Reduction(series, w.Name)
		if err != nil {
			t.Fatal(err)
		}
		if red < 0.10 || red > 0.80 {
			t.Errorf("%s: reduction %.0f%% outside the paper's 14-73%% band (with slack)", w.Name, red*100)
		}
	}
}

// TestFig7StabilityClaim verifies Sec. V-B's variance finding: AggShuffle's
// interquartile range is tighter than the Spark baseline's on the jittery
// WAN, for the most network-bound workload.
func TestFig7StabilityClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	opts := testOpts()
	opts.Runs = 5
	series, err := Sweep([]*workloads.Workload{workloads.TeraSort()}, Schemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	spark, _ := Find(series, "TeraSort", core.SchemeSpark)
	agg, _ := Find(series, "TeraSort", core.SchemeAggShuffle)
	sparkIQR := spark.JCT.Q3 - spark.JCT.Q1
	aggIQR := agg.JCT.Q3 - agg.JCT.Q1
	if aggIQR >= sparkIQR {
		t.Errorf("AggShuffle IQR %.1fs not tighter than Spark %.1fs", aggIQR, sparkIQR)
	}
}

// TestFig8Shapes verifies the traffic results: reductions inside the
// paper's 16-90% band, PageRank's the largest, and TeraSort the only
// workload where Centralized ships the fewest bytes.
func TestFig8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	series, err := Fig8(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reductions := map[string]float64{}
	for _, w := range workloads.All() {
		if !w.InFig8 {
			continue
		}
		spark, _ := Find(series, w.Name, core.SchemeSpark)
		cent, _ := Find(series, w.Name, core.SchemeCentralized)
		agg, _ := Find(series, w.Name, core.SchemeAggShuffle)
		red := 1 - agg.CrossDCMB.TrimmedMean/spark.CrossDCMB.TrimmedMean
		reductions[w.Name] = red
		if red < 0.10 || red > 0.95 {
			t.Errorf("%s: traffic reduction %.0f%% outside the paper's 16-90%% band (with slack)", w.Name, red*100)
		}
		centLowest := cent.CrossDCMB.TrimmedMean < agg.CrossDCMB.TrimmedMean &&
			cent.CrossDCMB.TrimmedMean < spark.CrossDCMB.TrimmedMean
		if w.Name == "TeraSort" && !centLowest {
			t.Errorf("TeraSort: Centralized not lowest (%v/%v/%v)",
				spark.CrossDCMB.TrimmedMean, cent.CrossDCMB.TrimmedMean, agg.CrossDCMB.TrimmedMean)
		}
	}
	for name, red := range reductions {
		if name != "PageRank" && red >= reductions["PageRank"] {
			t.Errorf("%s reduction %.0f%% >= PageRank's %.0f%%; paper: PageRank largest",
				name, red*100, reductions["PageRank"]*100)
		}
	}
}

// TestFig9StageSpans checks the stage-breakdown payload: every stage has a
// positive span and AggShuffle's late (result) stage is never slower than
// the baseline's.
func TestFig9StageSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	opts := testOpts()
	series, err := Sweep([]*workloads.Workload{workloads.WordCount()}, Schemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	spark, _ := Find(series, "WordCount", core.SchemeSpark)
	agg, _ := Find(series, "WordCount", core.SchemeAggShuffle)
	for _, s := range series {
		if len(s.Stages) == 0 {
			t.Fatalf("%s/%v has no stage spans", s.Workload, s.Scheme)
		}
		for i, st := range s.Stages {
			if st.TrimmedMean <= 0 {
				t.Fatalf("%s/%v stage %d span %v", s.Workload, s.Scheme, i, st.TrimmedMean)
			}
		}
	}
	sparkLast := spark.Stages[len(spark.Stages)-1].TrimmedMean
	aggLast := agg.Stages[len(agg.Stages)-1].TrimmedMean
	if aggLast > sparkLast {
		t.Errorf("AggShuffle late stage %.1fs slower than Spark %.1fs (paper: AggShuffle fast in late stages)", aggLast, sparkLast)
	}
}

func TestFig1Shape(t *testing.T) {
	fetch, push, err := Fig1(1)
	if err != nil {
		t.Fatal(err)
	}
	if push.JCT >= fetch.JCT {
		t.Errorf("push JCT %.1f not below fetch %.1f", push.JCT, fetch.JCT)
	}
	if push.ReduceStart >= fetch.ReduceStart {
		t.Errorf("push reducers start at %.1f, fetch at %.1f; want earlier", push.ReduceStart, fetch.ReduceStart)
	}
	if !strings.Contains(push.Gantt, "P") {
		t.Error("push gantt missing push spans")
	}
	if !strings.Contains(fetch.Gantt, "F") {
		t.Error("fetch gantt missing fetch spans")
	}
	// Sec. II-B: proactive pushes keep the WAN busier before the reducers
	// start than the fetch-based barrier does.
	if push.WANUtilBeforeReduce <= fetch.WANUtilBeforeReduce {
		t.Errorf("push pre-reduce WAN utilization %.2f not above fetch %.2f",
			push.WANUtilBeforeReduce, fetch.WANUtilBeforeReduce)
	}
}

func TestFig2Shape(t *testing.T) {
	fetch, push, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	if fetch.Penalty <= 0 || push.Penalty <= 0 {
		t.Fatalf("failures cost nothing: fetch %.1f push %.1f", fetch.Penalty, push.Penalty)
	}
	if push.Penalty >= fetch.Penalty {
		t.Errorf("push recovery penalty %.1fs not below fetch %.1fs", push.Penalty, fetch.Penalty)
	}
}

func TestFormatters(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	opts := testOpts()
	opts.Runs = 2
	series, err := Sweep(workloads.All(), Schemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"fig7":   FormatFig7(series),
		"fig8":   FormatFig8(series),
		"fig9":   FormatFig9(series),
		"table1": FormatTableI(),
		"topo":   FormatTopology(topology.SixRegionEC2()),
	} {
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short:\n%s", name, out)
		}
	}
	for _, w := range workloads.All() {
		if !strings.Contains(FormatTableI(), w.Name) {
			t.Errorf("Table I missing %s", w.Name)
		}
	}
	fetch, push, err := Fig1(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(FormatFig1(fetch, push), "reducers start") {
		t.Error("Fig1 format missing reducer start")
	}
	f2a, f2b, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(FormatFig2(f2a, f2b), "penalty") {
		t.Error("Fig2 format missing penalty")
	}
}

func TestRunOneValidates(t *testing.T) {
	opts := Options{Runs: 1, Scale: 0.1, Validate: true}
	rep, err := RunOne(workloads.Sort(), core.SchemeAggShuffle, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.JCT <= 0 {
		t.Fatal("no JCT")
	}
}

func TestFindMissing(t *testing.T) {
	if _, err := Find(nil, "nope", core.SchemeSpark); err == nil {
		t.Fatal("Find on empty series succeeded")
	}
	if _, err := Reduction(nil, "nope"); err == nil {
		t.Fatal("Reduction on empty series succeeded")
	}
}
