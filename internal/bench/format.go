package bench

import (
	"fmt"
	"strings"

	"wanshuffle/internal/core"
	"wanshuffle/internal/topology"
	"wanshuffle/internal/workloads"
)

// FormatFig7 renders the Fig. 7 table: 10% trimmed mean job completion
// time with median and interquartile range, per workload and scheme.
func FormatFig7(series []Series) string {
	var b strings.Builder
	b.WriteString("Fig. 7 — Average job completion time (s), 10% trimmed mean [median, Q1–Q3]\n")
	fmt.Fprintf(&b, "%-12s %28s %28s %28s %12s\n", "Workload", "Spark", "Centralized", "AggShuffle", "Agg vs Spark")
	for _, w := range workloads.All() {
		row := fmt.Sprintf("%-12s", w.Name)
		var cells int
		for _, scheme := range Schemes() {
			s, err := Find(series, w.Name, scheme)
			if err != nil {
				continue
			}
			cells++
			row += fmt.Sprintf(" %9.1f [%6.1f, %6.1f–%6.1f]",
				s.JCT.TrimmedMean, s.JCT.Median, s.JCT.Q1, s.JCT.Q3)
		}
		if cells == 0 {
			continue
		}
		if red, err := Reduction(series, w.Name); err == nil {
			row += fmt.Sprintf("      -%4.0f%%", red*100)
		}
		b.WriteString(row + "\n")
	}
	return b.String()
}

// FormatFig8 renders the Fig. 8 table: cross-datacenter traffic in MB per
// workload and scheme.
func FormatFig8(series []Series) string {
	var b strings.Builder
	b.WriteString("Fig. 8 — Cross-datacenter traffic (MB), mean over runs\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %14s\n", "Workload", "Spark", "Centralized", "AggShuffle", "Agg vs Spark")
	for _, w := range workloads.All() {
		if !w.InFig8 {
			continue
		}
		spark, err1 := Find(series, w.Name, core.SchemeSpark)
		cent, err2 := Find(series, w.Name, core.SchemeCentralized)
		agg, err3 := Find(series, w.Name, core.SchemeAggShuffle)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		red := 0.0
		if spark.CrossDCMB.TrimmedMean > 0 {
			red = (1 - agg.CrossDCMB.TrimmedMean/spark.CrossDCMB.TrimmedMean) * 100
		}
		fmt.Fprintf(&b, "%-12s %12.0f %12.0f %12.0f %13.1f%%\n",
			w.Name, spark.CrossDCMB.TrimmedMean, cent.CrossDCMB.TrimmedMean, agg.CrossDCMB.TrimmedMean, red)
	}
	return b.String()
}

// FormatFig9 renders the Fig. 9 stacked-bar data: per-stage execution time
// per workload and scheme.
func FormatFig9(series []Series) string {
	var b strings.Builder
	b.WriteString("Fig. 9 — Stage execution time breakdown (s), trimmed mean per stage [Q1–Q3]\n")
	for _, w := range workloads.All() {
		fmt.Fprintf(&b, "%s:\n", w.Name)
		for _, scheme := range Schemes() {
			s, err := Find(series, w.Name, scheme)
			if err != nil {
				continue
			}
			fmt.Fprintf(&b, "  %-12s", scheme)
			var total float64
			for i, st := range s.Stages {
				fmt.Fprintf(&b, " | s%d %6.1f [%5.1f–%5.1f]", i, st.TrimmedMean, st.Q1, st.Q3)
				total += st.TrimmedMean
			}
			fmt.Fprintf(&b, " | Σ %.1f\n", total)
		}
	}
	return b.String()
}

// FormatTableI renders the workload specification table.
func FormatTableI() string {
	var b strings.Builder
	b.WriteString("Table I — Workload specifications (HiBench, \"large scale\")\n")
	for _, w := range workloads.All() {
		fmt.Fprintf(&b, "  %-12s %s\n", w.Name, w.TableI)
	}
	b.WriteString("  Parallelism of both map and reduce: 8 (8 cores per datacenter)\n")
	return b.String()
}

// FormatTopology renders the Fig. 6 cluster description.
func FormatTopology(topo *topology.Topology) string {
	var b strings.Builder
	b.WriteString("Fig. 6 — Evaluation cluster\n")
	for _, dc := range topo.DCs {
		workers := topo.HostsIn(dc.ID)
		aux := len(dc.Hosts) - len(workers)
		extra := ""
		if aux > 0 {
			extra = fmt.Sprintf(" (+%d dedicated: master, namenode)", aux)
		}
		fmt.Fprintf(&b, "  %-16s %d workers × %d cores%s\n", dc.Name, len(workers), topo.Host(workers[0]).Cores, extra)
	}
	b.WriteString("  Inter-region base capacity (Mbps):\n")
	names := topo.DCNames()
	fmt.Fprintf(&b, "  %16s", "")
	for _, n := range names {
		fmt.Fprintf(&b, " %14s", n)
	}
	b.WriteString("\n")
	for i := 0; i < topo.NumDCs(); i++ {
		fmt.Fprintf(&b, "  %16s", names[i])
		for j := 0; j < topo.NumDCs(); j++ {
			if i == j {
				fmt.Fprintf(&b, " %14s", "-")
				continue
			}
			fmt.Fprintf(&b, " %14.0f", topo.InterBps(topology.DCID(i), topology.DCID(j))/topology.Mbps)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFig1 renders the Fig. 1 comparison.
func FormatFig1(fetch, push *MicroResult) string {
	var b strings.Builder
	b.WriteString("Fig. 1 — Fetch-based vs proactive push (2-DC micro-scenario)\n\n")
	for _, r := range []*MicroResult{fetch, push} {
		fmt.Fprintf(&b, "[%s] reducers start: %.1fs   JCT: %.1fs   cross-DC: %.0f MB   WAN utilization before reduce: %.0f%%\n%s\n",
			r.Mode, r.ReduceStart, r.JCT, r.CrossDCMB, r.WANUtilBeforeReduce*100, r.Gantt)
	}
	fmt.Fprintf(&b, "Push lets reducers start %.1fs earlier (%.0f%%).\n",
		fetch.ReduceStart-push.ReduceStart,
		(1-push.ReduceStart/fetch.ReduceStart)*100)
	return b.String()
}

// FormatFig2 renders the Fig. 2 comparison.
func FormatFig2(fetch, push *Fig2Result) string {
	var b strings.Builder
	b.WriteString("Fig. 2 — Reducer-failure recovery (2-DC micro-scenario)\n\n")
	fmt.Fprintf(&b, "[fetch] clean JCT %.1fs → failed JCT %.1fs (penalty %.1fs; re-fetch crosses DCs)\n%s\n",
		fetch.Clean.JCT, fetch.Failed.JCT, fetch.Penalty, fetch.Failed.Gantt)
	fmt.Fprintf(&b, "[push]  clean JCT %.1fs → failed JCT %.1fs (penalty %.1fs; retry reads locally)\n%s\n",
		push.Clean.JCT, push.Failed.JCT, push.Penalty, push.Failed.Gantt)
	fmt.Fprintf(&b, "Push cuts the recovery penalty by %.0f%%.\n", (1-push.Penalty/fetch.Penalty)*100)
	return b.String()
}
