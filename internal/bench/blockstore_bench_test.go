package bench

import (
	"fmt"
	"testing"

	"wanshuffle/internal/blockstore"
	"wanshuffle/internal/rdd"
)

// blockstoreWorkload builds one map output's worth of prepared records and
// a bucketing function over reduceParts hash partitions — the shape the
// live workers push through their stores.
func blockstoreWorkload(records, reduceParts int) ([]rdd.Pair, blockstore.BucketFunc) {
	recs := make([]rdd.Pair, records)
	for i := range recs {
		recs[i] = rdd.KV(fmt.Sprintf("key-%06d", i), fmt.Sprintf("value-%04d", i%977))
	}
	spec := &rdd.ShuffleSpec{Partitioner: rdd.NewHashPartitioner(reduceParts)}
	bucket := func(rs []rdd.Pair) ([][]rdd.Pair, error) {
		return rdd.BucketRecords(spec, rs), nil
	}
	return recs, bucket
}

// runStoreCycle drives one full storage cycle through the store: put
// `outputs` map outputs, then read every reduce shard of each — the
// bucketing (and, for a spill store under pressure, the spill + reload)
// hot path of a shuffle.
func runStoreCycle(b *testing.B, store blockstore.Store, recs []rdd.Pair, bucket blockstore.BucketFunc, outputs, reduceParts int) {
	b.Helper()
	for m := 0; m < outputs; m++ {
		key := blockstore.Key{Shuffle: 1, MapPart: m}
		if _, _, err := store.Put(key, blockstore.Output{Records: recs}); err != nil {
			b.Fatal(err)
		}
	}
	for r := 0; r < reduceParts; r++ {
		for m := 0; m < outputs; m++ {
			shards, err := store.Shards(blockstore.Key{Shuffle: 1, MapPart: m}, bucket)
			if err != nil {
				b.Fatal(err)
			}
			if len(shards) != reduceParts {
				b.Fatalf("got %d shards, want %d", len(shards), reduceParts)
			}
		}
	}
	if err := store.Reset(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBlockStoreResident measures the bucketing hot path with every
// output resident in memory (records/sec across one put+shard-read cycle).
func BenchmarkBlockStoreResident(b *testing.B) {
	const outputs, records, reduceParts = 8, 4096, 8
	recs, bucket := blockstoreWorkload(records, reduceParts)
	store := blockstore.NewMemStore(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runStoreCycle(b, store, recs, bucket, outputs, reduceParts)
	}
	b.ReportMetric(float64(outputs*records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkBlockStoreSpill measures the same cycle with the memory budget
// squeezed so outputs continually spill to disk and reload on read — the
// gob encode/decode + file I/O cost stacked on top of bucketing.
func BenchmarkBlockStoreSpill(b *testing.B) {
	const outputs, records, reduceParts = 8, 4096, 8
	recs, bucket := blockstoreWorkload(records, reduceParts)
	store, err := blockstore.NewSpillStore(blockstore.SpillConfig{
		// Roughly one output resident at a time: every read reloads.
		MemoryBudget: int64(rdd.SizeOfAll(recs)) + 1,
		Dir:          b.TempDir(),
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runStoreCycle(b, store, recs, bucket, outputs, reduceParts)
	}
	b.StopTimer()
	stats := store.Accountant().Stats()
	if stats.SpillEvents == 0 {
		b.Fatal("spill benchmark never spilled")
	}
	b.ReportMetric(float64(outputs*records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	b.ReportMetric(float64(stats.SpillEvents)/float64(b.N), "spills/op")
}
