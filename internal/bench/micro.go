package bench

import (
	"fmt"

	"wanshuffle/internal/core"
	"wanshuffle/internal/exec"
	"wanshuffle/internal/rdd"
	"wanshuffle/internal/simnet"
	"wanshuffle/internal/topology"
	"wanshuffle/internal/trace"
)

// MicroResult reports one run of the Fig. 1 / Fig. 2 micro-scenario.
type MicroResult struct {
	// Mode is "fetch" or "push".
	Mode string
	// JCT is the job completion time.
	JCT float64
	// ReduceStart is when the first reduce task began computing — the
	// quantity Fig. 1 compares (t=18 fetch vs t=14 push).
	ReduceStart float64
	// CrossDCMB is the cross-datacenter traffic in MB.
	CrossDCMB float64
	// WANUtilBeforeReduce is the shared inter-DC link's mean utilization
	// from job start to reducer start — the quantity behind Sec. II-B's
	// "links are usually well under-utilized most of the time".
	WANUtilBeforeReduce float64
	// Gantt is the ASCII timeline.
	Gantt string
}

// microScenario builds the two-datacenter setting of the paper's Figs. 1
// and 2: staggered mappers in dc-a, reducers in dc-b, inter-DC bandwidth at
// ¼ of a datacenter link. Optional mutators tweak the engine config
// (ablations).
func microScenario(push, injectFailure bool, seed int64, mutate ...func(*exec.Config)) (*MicroResult, error) {
	topo := microTopology()
	dcA, _ := topo.DCByName("dc-a")
	dcB, _ := topo.DCByName("dc-b")

	cfg := core.Config{
		Topology: topo,
		Seed:     seed,
		Scheme:   core.SchemeManual,
		Exec: exec.Config{
			ComputeBps:    20e6,
			ComputeNoise:  -1,
			PinReducersDC: &dcB,
			Trace:         true,
			// All cross-DC traffic funnels through the single dc-b
			// host's 250 Mbps WAN share — Fig. 1's "inter-datacenter
			// link is ¼ of a datacenter link", shared by every flow.
			Net: simnetConfig(),
		},
	}
	if injectFailure {
		cfg.Exec.ScriptedFailures = []exec.FailureSpec{{Stage: "micro.agg", Part: 0, Attempt: 1, AtFrac: 0.5}}
	}
	for _, m := range mutate {
		m(&cfg.Exec)
	}
	ctx := core.NewContext(cfg)

	// Four staggered map partitions on dc-a's two workers, as in Fig. 1:
	// mappers finish at different times, so a proactive push keeps the
	// WAN link busy long before the stage barrier.
	hosts := ctx.Topology().HostsIn(dcA)
	var parts []rdd.InputPartition
	for i := 0; i < 4; i++ {
		var recs []rdd.Pair
		for w := 0; w < 40; w++ {
			recs = append(recs, rdd.KV(fmt.Sprintf("k%d-%d", i, w), fmt.Sprintf("word%02d", (w+i)%13)))
		}
		parts = append(parts, rdd.InputPartition{
			Host:         hosts[i%len(hosts)],
			ModeledBytes: float64(i+1) * 40e6,
			Records:      recs,
		})
	}
	in := ctx.Input("micro.in", parts)
	mapped := in.Map("micro.map", func(p rdd.Pair) rdd.Pair { return rdd.KV(p.Value.(string), 1) })
	if push {
		mapped = mapped.TransferTo(dcB)
	}
	job := mapped.AggregateByKey("micro.agg", 2, func(a, b rdd.Value) rdd.Value {
		return a.(int) + b.(int)
	})

	rep, err := ctx.Collect(job)
	if err != nil {
		return nil, err
	}
	mode := "fetch"
	if push {
		mode = "push"
	}
	res := &MicroResult{
		Mode:      mode,
		JCT:       rep.JCT,
		CrossDCMB: rep.CrossDCBytes / 1e6,
		Gantt:     rep.Gantt(100),
	}
	// The first reduce computation marks the reducers starting (Fig. 1
	// compares t=18 fetch vs t=14 push at this point).
	for _, s := range rep.Spans() {
		if s.Kind == trace.KindReduce {
			res.ReduceStart = s.Start
			break
		}
	}
	if res.ReduceStart > 0 {
		moved := simnet.CrossBytesBetween(ctx.Engine().Net.UtilTimeline(), 0, res.ReduceStart)
		capacity := 250 * topology.Mbps / 8 * res.ReduceStart
		res.WANUtilBeforeReduce = moved / capacity
	}
	return res, nil
}

// microTopology is Fig. 1's setting: two mapper workers in dc-a and one
// reducer-side worker in dc-b, connected by a wide-area path at ¼ of the
// datacenter link rate.
func microTopology() *topology.Topology {
	b := topology.NewBuilder()
	dcA := b.AddDC("dc-a", 2, 2, 1*topology.Gbps)
	dcB := b.AddDC("dc-b", 1, 4, 1*topology.Gbps)
	b.Link(dcA, dcB, 250*topology.Mbps, 40*topology.Millisecond)
	b.IntraLatency(0.5 * topology.Millisecond)
	b.Driver(dcB)
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

func simnetConfig() (c simnet.Config) {
	c.HostWANBps = 250 * topology.Mbps
	c.BurstPenalty = -1 // the shared-link arithmetic of Fig. 1 is fluid
	return c
}

// Fig1 reproduces the paper's Fig. 1: the same two-stage job under
// fetch-based shuffle vs proactive push, reporting reducer start times and
// timelines.
func Fig1(seed int64) (fetch, push *MicroResult, err error) {
	fetch, err = microScenario(false, false, seed)
	if err != nil {
		return nil, nil, err
	}
	push, err = microScenario(true, false, seed)
	if err != nil {
		return nil, nil, err
	}
	return fetch, push, nil
}

// Fig2Result extends MicroResult with the failure-recovery comparison.
type Fig2Result struct {
	Clean  *MicroResult
	Failed *MicroResult
	// Penalty is the JCT increase the failure caused.
	Penalty float64
}

// Fig2 reproduces the paper's Fig. 2: a reducer fails mid-stage; with
// fetch-based shuffle its retry re-fetches across datacenters, with push
// the shuffle input is already local to the reducer's datacenter.
func Fig2(seed int64) (fetch, push *Fig2Result, err error) {
	build := func(pushMode bool) (*Fig2Result, error) {
		clean, err := microScenario(pushMode, false, seed)
		if err != nil {
			return nil, err
		}
		failed, err := microScenario(pushMode, true, seed)
		if err != nil {
			return nil, err
		}
		return &Fig2Result{Clean: clean, Failed: failed, Penalty: failed.JCT - clean.JCT}, nil
	}
	fetch, err = build(false)
	if err != nil {
		return nil, nil, err
	}
	push, err = build(true)
	if err != nil {
		return nil, nil, err
	}
	return fetch, push, nil
}
