package bench

import (
	"fmt"
	"math"
	"strings"

	"wanshuffle/internal/core"
	"wanshuffle/internal/exec"
	"wanshuffle/internal/rdd"
	"wanshuffle/internal/simnet"
	"wanshuffle/internal/stats"
	"wanshuffle/internal/workloads"
)

// AblationRow is one variant's aggregate outcome.
type AblationRow struct {
	Study   string
	Variant string
	JCT     stats.Summary
	CrossMB stats.Summary
}

// runVariant sweeps one workload × scheme under a tweaked engine config
// and optionally tweaked workload options.
func runVariant(w *workloads.Workload, scheme core.Scheme, opts Options, mutate func(*exec.Config), wlMutate func(*workloads.Options)) (AblationRow, error) {
	opts = opts.withDefaults()
	var jcts, cross []float64
	for i := 0; i < opts.Runs; i++ {
		seed := opts.BaseSeed + int64(i)
		cfg := core.Config{
			Seed:   seed,
			Scheme: scheme,
			Exec: exec.Config{
				Net: simnet.Config{JitterAmplitude: opts.Jitter},
			},
		}
		if mutate != nil {
			mutate(&cfg.Exec)
		}
		ctx := core.NewContext(cfg)
		wlOpts := workloads.Options{Seed: seed, Scale: opts.Scale}
		if wlMutate != nil {
			wlMutate(&wlOpts)
		}
		inst := w.Make(ctx, wlOpts)
		rep, err := ctx.Save(inst.Target)
		if err != nil {
			return AblationRow{}, err
		}
		jcts = append(jcts, rep.JCT)
		cross = append(cross, rep.CrossDCBytes/1e6)
	}
	return AblationRow{JCT: stats.Summarize(jcts), CrossMB: stats.Summarize(cross)}, nil
}

// Ablate runs the design-choice ablations DESIGN.md calls out:
//
//   - pipelining: pushes at map completion (the paper's design) vs held at
//     a phase barrier;
//   - aggregator selection: Eq. 2's largest-share rule vs random vs worst;
//   - aggregation spread: top-K ∈ {1, 2, 3} datacenters;
//   - WAN burst degradation β (the fetch-storm model) including β = 0,
//     the idealized fluid-TCP network;
//   - bandwidth jitter amplitude, the driver of the baseline's variance.
//
// TeraSort exercises the network-heavy path; PageRank the iterative one.
func Ablate(opts Options) ([]AblationRow, error) {
	opts = opts.withDefaults()
	var rows []AblationRow
	add := func(study, variant string, row AblationRow, err error) error {
		if err != nil {
			return fmt.Errorf("bench: ablation %s/%s: %w", study, variant, err)
		}
		row.Study = study
		row.Variant = variant
		rows = append(rows, row)
		return nil
	}

	ts := workloads.TeraSort()
	pr := workloads.PageRank()

	// 1a. Pipelining in the Fig. 1 micro-scenario, where map completions
	// stagger heavily — the regime the mechanism targets.
	for _, noPipe := range []bool{false, true} {
		name := "pushed at map completion (paper)"
		if noPipe {
			name = "held at phase barrier"
		}
		noPipe := noPipe
		var jcts, cross []float64
		for i := 0; i < opts.Runs; i++ {
			res, err := microScenario(true, false, opts.BaseSeed+int64(i), func(c *exec.Config) { c.NoPipelining = noPipe })
			if err != nil {
				return nil, fmt.Errorf("bench: ablation pipelining micro: %w", err)
			}
			jcts = append(jcts, res.JCT)
			cross = append(cross, res.CrossDCMB)
		}
		row := AblationRow{JCT: stats.Summarize(jcts), CrossMB: stats.Summarize(cross)}
		if err := add("pipelining[Fig.1 micro]", name, row, nil); err != nil {
			return nil, err
		}
	}

	// 1b. Pipelining at workload scale: 96 map partitions (two task waves
	// per core) give only a mild stagger, bounding the effect.
	multiWave := func(o *workloads.Options) { o.MapParts = 96 }
	for _, noPipe := range []bool{false, true} {
		name := "pushed at map completion (paper)"
		if noPipe {
			name = "held at phase barrier"
		}
		noPipe := noPipe
		row, err := runVariant(ts, core.SchemeAggShuffle, opts, func(c *exec.Config) { c.NoPipelining = noPipe }, multiWave)
		if err := add("pipelining[TeraSort,96 maps]", name, row, err); err != nil {
			return nil, err
		}
	}

	// 2. Aggregator selection rule.
	for _, p := range []struct {
		name   string
		policy exec.AggregatorPolicy
	}{
		{"largest input share (Eq. 2)", exec.AggregatorBest},
		{"random datacenter", exec.AggregatorRandom},
		{"smallest input share", exec.AggregatorWorst},
	} {
		p := p
		row, err := runVariant(pr, core.SchemeAggShuffle, opts, func(c *exec.Config) { c.AggregatorPolicy = p.policy }, nil)
		if err := add("aggregator-rule[PageRank]", p.name, row, err); err != nil {
			return nil, err
		}
	}

	// 3. Aggregating into the top-K datacenters. Uses the explicit-style
	// TeraSort so K applies to the raw-input transfer.
	for k := 1; k <= 3; k++ {
		k := k
		w := teraSortTopK(k)
		row, err := runVariant(w, core.SchemeManual, opts, nil, nil)
		if err := add("aggregate-top-K[TeraSort]", fmt.Sprintf("K=%d", k), row, err); err != nil {
			return nil, err
		}
	}

	// 4. WAN burst degradation β, on the Spark baseline.
	for _, beta := range []float64{-1, 0.06, 0.12, 0.24} {
		name := fmt.Sprintf("β=%.2f", beta)
		if beta < 0 {
			name = "β=0 (idealized fluid TCP)"
		}
		beta := beta
		row, err := runVariant(ts, core.SchemeSpark, opts, func(c *exec.Config) { c.Net.BurstPenalty = beta }, nil)
		if err := add("burst-penalty[TeraSort/Spark]", name, row, err); err != nil {
			return nil, err
		}
	}

	// 4b. Multi-tenancy (Sec. IV-E limitation discussion): three
	// concurrent WordCounts share the cluster; Push/Aggregate must remain
	// beneficial even while jobs contend for the aggregator datacenter.
	for _, scheme := range []core.Scheme{core.SchemeSpark, core.SchemeAggShuffle} {
		var slowest, cross []float64
		for i := 0; i < opts.Runs; i++ {
			seed := opts.BaseSeed + int64(i)
			ctx := core.NewContext(core.Config{
				Seed: seed, Scheme: scheme,
				Exec: exec.Config{Net: simnet.Config{JitterAmplitude: opts.Jitter}},
			})
			wc := workloads.WordCount()
			var targets []*rdd.RDD
			for j := 0; j < 3; j++ {
				inst := wc.Make(ctx, workloads.Options{Seed: seed + int64(100*j), Scale: opts.Scale})
				targets = append(targets, inst.Target)
			}
			reports, err := ctx.RunConcurrently(targets)
			if err != nil {
				return nil, fmt.Errorf("bench: multi-tenancy ablation: %w", err)
			}
			var worst, crossTotal float64
			for _, rep := range reports {
				if rep.JCT > worst {
					worst = rep.JCT
				}
			}
			crossTotal = reports[len(reports)-1].CrossDCBytes / 1e6
			slowest = append(slowest, worst)
			cross = append(cross, crossTotal)
		}
		row := AblationRow{JCT: stats.Summarize(slowest), CrossMB: stats.Summarize(cross)}
		if err := add("multi-tenancy[3×WordCount]", fmt.Sprintf("%v (slowest of 3)", scheme), row, nil); err != nil {
			return nil, err
		}
	}

	// 4c. Node failure (beyond the paper's reducer-retry scenario): a
	// mapper's host dies after the map stage. Fetch-based shuffle loses
	// the shuffle files and recomputes; pushed shuffle input survives in
	// the aggregator datacenter.
	for _, push := range []bool{false, true} {
		name := "fetch (recompute lost maps)"
		if push {
			name = "push (output survives mapper death)"
		}
		var jcts []float64
		for i := 0; i < opts.Runs; i++ {
			seed := opts.BaseSeed + int64(i)
			clean, err := microScenario(push, false, seed)
			if err != nil {
				return nil, fmt.Errorf("bench: node-failure ablation: %w", err)
			}
			failed, err := microScenario(push, false, seed, func(c *exec.Config) {
				c.HostFailures = []exec.HostFailure{{Host: 0, At: clean.JCT * 0.55}}
			})
			if err != nil {
				return nil, fmt.Errorf("bench: node-failure ablation: %w", err)
			}
			jcts = append(jcts, failed.JCT-clean.JCT)
		}
		row := AblationRow{JCT: stats.Summarize(jcts)}
		if err := add("node-failure-penalty[Fig.1 micro]", name, row, nil); err != nil {
			return nil, err
		}
	}

	// 5. Jitter amplitude, Spark baseline vs AggShuffle.
	for _, amp := range []float64{-1, 0.25, 0.4} {
		for _, scheme := range []core.Scheme{core.SchemeSpark, core.SchemeAggShuffle} {
			o := opts
			o.Jitter = amp
			row, err := runVariant(ts, scheme, o, nil, nil)
			if err := add("jitter[TeraSort]", fmt.Sprintf("amp=%.2f %v", math.Max(amp, 0), scheme), row, err); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// teraSortTopK is TeraSort with an explicit top-K raw-input aggregation.
func teraSortTopK(k int) *workloads.Workload {
	w := workloads.TeraSortExplicitTopK(k)
	return w
}

// FormatAblation renders ablation rows grouped by study.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablations — design choices isolated (trimmed mean over runs)\n")
	last := ""
	for _, r := range rows {
		if r.Study != last {
			fmt.Fprintf(&b, "\n%s\n", r.Study)
			last = r.Study
		}
		fmt.Fprintf(&b, "  %-36s JCT %7.1f s [%6.1f–%6.1f]   cross-DC %7.0f MB\n",
			r.Variant, r.JCT.TrimmedMean, r.JCT.Q1, r.JCT.Q3, r.CrossMB.TrimmedMean)
	}
	return b.String()
}
