package bench

import (
	"strings"
	"testing"
)

// TestAblateSmoke runs every ablation at tiny scale and sanity-checks the
// qualitative relationships DESIGN.md documents.
func TestAblateSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is expensive")
	}
	rows, err := Ablate(Options{Runs: 2, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	byStudy := map[string][]AblationRow{}
	for _, r := range rows {
		byStudy[r.Study] = append(byStudy[r.Study], r)
	}

	// Pipelining in the micro-scenario: pushing at map completion wins.
	micro := byStudy["pipelining[Fig.1 micro]"]
	if len(micro) != 2 {
		t.Fatalf("micro pipelining rows = %d", len(micro))
	}
	if micro[0].JCT.TrimmedMean >= micro[1].JCT.TrimmedMean {
		t.Errorf("pipelined %.2f not below barrier %.2f", micro[0].JCT.TrimmedMean, micro[1].JCT.TrimmedMean)
	}

	// Aggregator rule: Eq. 2's choice moves the least traffic.
	rule := byStudy["aggregator-rule[PageRank]"]
	if len(rule) != 3 {
		t.Fatalf("aggregator rows = %d", len(rule))
	}
	for _, r := range rule[1:] {
		if rule[0].CrossMB.TrimmedMean >= r.CrossMB.TrimmedMean {
			t.Errorf("Eq.2 rule traffic %.0f not below %q's %.0f",
				rule[0].CrossMB.TrimmedMean, r.Variant, r.CrossMB.TrimmedMean)
		}
	}

	// Top-K: K=1 moves the least (Sec. III-B: improve s1/S).
	topk := byStudy["aggregate-top-K[TeraSort]"]
	if len(topk) != 3 {
		t.Fatalf("top-K rows = %d", len(topk))
	}
	for _, r := range topk[1:] {
		if topk[0].CrossMB.TrimmedMean >= r.CrossMB.TrimmedMean {
			t.Errorf("K=1 traffic %.0f not below %s's %.0f",
				topk[0].CrossMB.TrimmedMean, r.Variant, r.CrossMB.TrimmedMean)
		}
	}

	// Burst penalty: baseline JCT grows monotonically with β.
	burst := byStudy["burst-penalty[TeraSort/Spark]"]
	for i := 1; i < len(burst); i++ {
		if burst[i].JCT.TrimmedMean <= burst[i-1].JCT.TrimmedMean {
			t.Errorf("β sweep not monotone: %q %.1f <= %q %.1f",
				burst[i].Variant, burst[i].JCT.TrimmedMean, burst[i-1].Variant, burst[i-1].JCT.TrimmedMean)
		}
	}

	// Multi-tenancy rows present with both schemes.
	if len(byStudy["multi-tenancy[3×WordCount]"]) != 2 {
		t.Fatalf("multi-tenancy rows = %d", len(byStudy["multi-tenancy[3×WordCount]"]))
	}

	out := FormatAblation(rows)
	for _, study := range []string{"pipelining", "aggregator-rule", "aggregate-top-K", "burst-penalty", "multi-tenancy", "jitter"} {
		if !strings.Contains(out, study) {
			t.Errorf("formatted ablation missing %q", study)
		}
	}
}
