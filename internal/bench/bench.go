// Package bench drives the paper's experiments: it runs HiBench workloads
// under the three schemes over many seeds, aggregates the statistics the
// paper reports, and regenerates each figure (see DESIGN.md's experiment
// index). Both cmd/wanbench and the repository's testing.B benchmarks call
// into this package.
package bench

import (
	"fmt"
	"sync"

	"wanshuffle/internal/core"
	"wanshuffle/internal/exec"
	"wanshuffle/internal/obs"
	"wanshuffle/internal/simnet"
	"wanshuffle/internal/stats"
	"wanshuffle/internal/workloads"
)

// Schemes evaluated throughout the paper, in presentation order.
func Schemes() []core.Scheme {
	return []core.Scheme{core.SchemeSpark, core.SchemeCentralized, core.SchemeAggShuffle}
}

// Options configure an experiment sweep.
type Options struct {
	// Runs is the number of iterations per (workload, scheme); the paper
	// uses 10. Defaults to 10.
	Runs int
	// BaseSeed seeds run i with BaseSeed+i. Defaults to 1.
	BaseSeed int64
	// Scale multiplies Table I modeled sizes. Defaults to 1.0 (paper
	// scale).
	Scale float64
	// Jitter is the WAN bandwidth fluctuation amplitude. Defaults to
	// 0.25, matching the paper's observation that inter-region capacity
	// varies widely over time.
	Jitter float64
	// Parallelism bounds concurrent simulation runs. Defaults to 8.
	Parallelism int
	// Validate re-checks every run's output against the in-memory
	// reference (slower; on by default at small scale in tests).
	Validate bool
	// Trace records per-task spans in every run, so reports carry
	// per-stage task-duration summaries.
	Trace bool
}

func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		o.Runs = 10
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Jitter == 0 {
		o.Jitter = 0.25
	}
	// Negative passes through: simnet/core treat it as jitter disabled.
	if o.Parallelism <= 0 {
		o.Parallelism = 8
	}
	return o
}

// RunOne executes a single workload run and returns its report.
func RunOne(w *workloads.Workload, scheme core.Scheme, seed int64, opts Options) (*core.Report, error) {
	opts = opts.withDefaults()
	ctx := core.NewContext(core.Config{
		Seed:   seed,
		Scheme: scheme,
		Exec: exec.Config{
			Net:   simnet.Config{JitterAmplitude: opts.Jitter},
			Trace: opts.Trace,
		},
	})
	inst := w.Make(ctx, workloads.Options{Seed: seed, Scale: opts.Scale})
	// HiBench jobs write their output to HDFS rather than collecting it
	// at the driver; Save models that.
	rep, err := ctx.Save(inst.Target)
	if err != nil {
		return nil, fmt.Errorf("bench: %s/%v seed %d: %w", w.Name, scheme, seed, err)
	}
	if opts.Validate {
		if err := inst.Validate(rep.Records); err != nil {
			return nil, fmt.Errorf("bench: %s/%v seed %d: wrong results: %w", w.Name, scheme, seed, err)
		}
	}
	return rep, nil
}

// Series is one (workload, scheme) sample set across runs.
type Series struct {
	Workload string
	Scheme   core.Scheme
	// JCT aggregates job completion times in seconds (Fig. 7).
	JCT stats.Summary
	// CrossDCMB aggregates cross-datacenter traffic in MB (Fig. 8).
	CrossDCMB stats.Summary
	// Stages aggregates per-stage spans in seconds (Fig. 9), by stage
	// index.
	Stages []stats.Summary
	// StageNames labels Stages.
	StageNames []string
}

// Sweep runs every given workload under every scheme for opts.Runs seeds
// and aggregates the results. Runs execute in parallel (each on its own
// simulated cluster); aggregation order is deterministic.
func Sweep(ws []*workloads.Workload, schemes []core.Scheme, opts Options) ([]Series, error) {
	opts = opts.withDefaults()
	type cell struct {
		jct     []float64
		cross   []float64
		stages  [][]float64
		names   []string
		lastErr error
	}
	cells := make([][]cell, len(ws))
	for i := range cells {
		cells[i] = make([]cell, len(schemes))
	}

	type task struct{ wi, si, run int }
	var tasks []task
	for wi := range ws {
		for si := range schemes {
			for run := 0; run < opts.Runs; run++ {
				tasks = append(tasks, task{wi, si, run})
			}
		}
	}

	results := make([]*core.Report, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Parallelism)
	for ti, tk := range tasks {
		ti, tk := ti, tk
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rep, err := RunOne(ws[tk.wi], schemes[tk.si], opts.BaseSeed+int64(tk.run), opts)
			results[ti] = rep
			errs[ti] = err
		}()
	}
	wg.Wait()

	for ti, tk := range tasks {
		if errs[ti] != nil {
			return nil, errs[ti]
		}
		rep := results[ti]
		c := &cells[tk.wi][tk.si]
		c.jct = append(c.jct, rep.JCT)
		c.cross = append(c.cross, rep.CrossDCBytes/1e6)
		for i, st := range rep.Stages {
			if i >= len(c.stages) {
				c.stages = append(c.stages, nil)
				c.names = append(c.names, st.Name)
			}
			c.stages[i] = append(c.stages[i], st.End-st.Start)
		}
	}

	var out []Series
	for wi, w := range ws {
		for si, scheme := range schemes {
			c := &cells[wi][si]
			s := Series{
				Workload:   w.Name,
				Scheme:     scheme,
				JCT:        stats.Summarize(c.jct),
				CrossDCMB:  stats.Summarize(c.cross),
				StageNames: c.names,
			}
			for _, sp := range c.stages {
				s.Stages = append(s.Stages, stats.Summarize(sp))
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// Reports runs every workload under every scheme once (seed
// opts.BaseSeed, tracing on) and returns each run's canonical JSON run
// report (obs.SchemaVersion), in workload-major order — the
// machine-readable companion to the figure experiments.
func Reports(ws []*workloads.Workload, schemes []core.Scheme, opts Options) ([]*obs.Report, error) {
	opts = opts.withDefaults()
	opts.Trace = true
	var out []*obs.Report
	for _, w := range ws {
		for _, scheme := range schemes {
			rep, err := RunOne(w, scheme, opts.BaseSeed, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, rep.RunReport(w.Name))
		}
	}
	return out, nil
}

// Fig7 regenerates the job-completion-time comparison for all five
// workloads under the three schemes.
func Fig7(opts Options) ([]Series, error) {
	return Sweep(workloads.All(), Schemes(), opts)
}

// Fig8 regenerates the cross-datacenter traffic comparison for the four
// workloads the paper's Fig. 8 covers (Sort, TeraSort, PageRank,
// NaiveBayes).
func Fig8(opts Options) ([]Series, error) {
	var ws []*workloads.Workload
	for _, w := range workloads.All() {
		if w.InFig8 {
			ws = append(ws, w)
		}
	}
	return Sweep(ws, Schemes(), opts)
}

// Fig9 regenerates the per-stage execution-time breakdown for all five
// workloads (same sweep as Fig. 7; the stage spans are the payload).
func Fig9(opts Options) ([]Series, error) {
	return Fig7(opts)
}

// Find returns the series for (workload, scheme).
func Find(series []Series, workload string, scheme core.Scheme) (Series, error) {
	for _, s := range series {
		if s.Workload == workload && s.Scheme == scheme {
			return s, nil
		}
	}
	return Series{}, fmt.Errorf("bench: no series for %s/%v", workload, scheme)
}

// Reduction returns the relative JCT reduction of AggShuffle vs the Spark
// baseline for a workload, e.g. 0.73 for the paper's headline 73%.
func Reduction(series []Series, workload string) (float64, error) {
	spark, err := Find(series, workload, core.SchemeSpark)
	if err != nil {
		return 0, err
	}
	agg, err := Find(series, workload, core.SchemeAggShuffle)
	if err != nil {
		return 0, err
	}
	if spark.JCT.TrimmedMean <= 0 {
		return 0, fmt.Errorf("bench: degenerate baseline JCT")
	}
	return 1 - agg.JCT.TrimmedMean/spark.JCT.TrimmedMean, nil
}
