// Package wanshuffle is a Go reproduction of "Optimizing Shuffle in
// Wide-Area Data Analytics" (Liu, Wang, Li — ICDCS 2017): a Spark-like
// dataflow engine for geo-distributed clusters whose shuffle can run in the
// stock fetch-based mode or with the paper's proactive Push/Aggregate
// mechanism (transferTo), evaluated on a deterministic flow-level WAN
// simulator.
//
// Quick start:
//
//	ctx := wanshuffle.NewContext(wanshuffle.Config{
//		Seed:   1,
//		Scheme: wanshuffle.SchemeAggShuffle,
//	})
//	input := ctx.DistributeRecords("text", records, 8, 3.2e9)
//	counts := input.
//		FlatMap("words", splitWords).
//		ReduceByKey("counts", 8, sumInts)
//	report, err := ctx.Collect(counts)
//
// The package re-exports the engine's internal packages as a single public
// surface: dataset construction and transformations (including TransferTo,
// the paper's contribution), the three evaluation schemes, the six-region
// EC2 topology preset, and run reports with per-stage spans and
// cross-datacenter traffic accounting.
package wanshuffle

import (
	"wanshuffle/internal/core"
	"wanshuffle/internal/exec"
	"wanshuffle/internal/rdd"
	"wanshuffle/internal/topology"
)

// Core dataset types.
type (
	// Pair is a key-value record.
	Pair = rdd.Pair
	// Value is a record payload.
	Value = rdd.Value
	// RDD is a dataset node in the lineage graph.
	RDD = rdd.RDD
	// InputPartition pins records and a modeled size to a host.
	InputPartition = rdd.InputPartition
	// CombineFn merges two values of one key.
	CombineFn = rdd.CombineFn
)

// Engine types.
type (
	// Context owns a lineage graph and a simulated cluster.
	Context = core.Context
	// Config configures a Context.
	Config = core.Config
	// Scheme selects the wide-area shuffle strategy.
	Scheme = core.Scheme
	// Report describes a completed job run.
	Report = core.Report
	// ExecConfig exposes the execution-model knobs.
	ExecConfig = exec.Config
	// FailureSpec injects a deterministic reduce-task failure.
	FailureSpec = exec.FailureSpec
)

// Topology types.
type (
	// Topology describes datacenters, hosts, and WAN links.
	Topology = topology.Topology
	// DCID identifies a datacenter.
	DCID = topology.DCID
	// HostID identifies a host.
	HostID = topology.HostID
)

// Schemes (Sec. V-A of the paper).
const (
	// SchemeSpark is stock fetch-based shuffle across datacenters.
	SchemeSpark = core.SchemeSpark
	// SchemeCentralized ships all raw input to one datacenter first.
	SchemeCentralized = core.SchemeCentralized
	// SchemeAggShuffle is the paper's Push/Aggregate mechanism with
	// automatic transferTo embedding.
	SchemeAggShuffle = core.SchemeAggShuffle
	// SchemeManual honors the application's explicit TransferTo calls.
	SchemeManual = core.SchemeManual
)

// NewContext builds a Context; the zero Config gives the paper's
// six-region EC2 cluster under SchemeSpark.
func NewContext(cfg Config) *Context { return core.NewContext(cfg) }

// KV constructs a Pair.
func KV(k string, v Value) Pair { return rdd.KV(k, v) }

// SixRegionEC2 returns the paper's evaluation cluster (Fig. 6): six EC2
// regions, four 2-core workers each, master and namenode in N. Virginia,
// jittery 80–300 Mbps WAN links.
func SixRegionEC2() *Topology { return topology.SixRegionEC2() }

// TwoDCMicro returns the two-datacenter topology of the paper's motivating
// examples (Figs. 1–2), with the inter-DC path at interRatio of host NIC
// bandwidth (default ¼).
func TwoDCMicro(hostsPerDC int, interRatio float64) *Topology {
	return topology.TwoDCMicro(hostsPerDC, interRatio)
}
